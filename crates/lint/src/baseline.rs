//! The panic-freedom ratchet baseline: committed per-crate counts of
//! panic sites and lint suppressions that may only go *down*.
//!
//! The file reuses the `lint.toml` syntax (see [`crate::config`]):
//!
//! ```toml
//! [[baseline]]
//! crate = "overrun-linalg"
//! panic_sites = 123
//! suppressions = 1
//! ```
//!
//! `overrun-lint --deny` fails when any current count exceeds its baseline
//! (a regression). When a count *drops*, the run reports the available
//! tightening; `--update-baseline` rewrites the file with the current
//! counts so the improvement is locked in.

use std::collections::BTreeMap;
use std::path::Path;

use crate::config::{parse_tables, Value};

/// Ratcheted counts for one crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// `unwrap()` / `expect(…)` / `panic!` sites.
    pub panic_sites: u64,
    /// Inline `// lint: allow(<rule>)` suppressions.
    pub suppressions: u64,
}

/// Baseline contents: crate name → counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-crate ratcheted counts.
    pub crates: BTreeMap<String, Counts>,
}

impl Baseline {
    /// Loads a baseline file. A missing file is an empty baseline (every
    /// count ratchets against zero), which is the right default for
    /// fixtures and new crates alike.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::default())
            }
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let mut out = Baseline::default();
        for (name, table) in parse_tables(&text)? {
            if name != "baseline" {
                return Err(format!("unknown section `[{name}]` in baseline file"));
            }
            let krate = match table.get("crate") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err("[[baseline]] entry missing `crate`".into()),
            };
            let int = |key: &str| -> Result<u64, String> {
                match table.get(key) {
                    Some(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
                    None => Ok(0),
                    _ => Err(format!("`{key}` must be a non-negative integer")),
                }
            };
            out.crates.insert(
                krate,
                Counts {
                    panic_sites: int("panic_sites")?,
                    suppressions: int("suppressions")?,
                },
            );
        }
        Ok(out)
    }

    /// Serialises the baseline in the canonical (sorted, commented) form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-freedom ratchet baseline — maintained by `overrun-lint`.\n\
             # Counts may only decrease; regenerate with `overrun-lint --update-baseline`\n\
             # after burning panic sites down (never to paper over a regression).\n",
        );
        for (name, c) in &self.crates {
            out.push_str(&format!(
                "\n[[baseline]]\ncrate = \"{name}\"\npanic_sites = {}\nsuppressions = {}\n",
                c.panic_sites, c.suppressions
            ));
        }
        out
    }

    /// Writes the canonical form to `path`.
    pub fn store(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = Baseline::default();
        b.crates.insert(
            "demo".into(),
            Counts {
                panic_sites: 7,
                suppressions: 2,
            },
        );
        b.crates.insert("zeta".into(), Counts::default());
        let dir = std::env::temp_dir().join(format!("overrun-lint-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.toml");
        b.store(&path).unwrap();
        let back = Baseline::load(&path).unwrap();
        assert_eq!(b, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/baseline.toml")).unwrap();
        assert!(b.crates.is_empty());
    }

    #[test]
    fn rejects_foreign_sections() {
        let dir = std::env::temp_dir().join(format!("overrun-lint-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.toml");
        std::fs::write(&path, "[other]\nx = 1\n").unwrap();
        assert!(Baseline::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
