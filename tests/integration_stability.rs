//! Cross-crate integration tests for the stability pipeline: design →
//! lifted dynamics → JSR certificate → simulation agreement.

use overrun_control::metrics::{evaluate_worst_case, WorstCaseOptions};
use overrun_control::prelude::*;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_control::stability::CertifyOptions;
use overrun_control::ControllerMode;
use overrun_jsr::StabilityVerdict;
use overrun_linalg::{spectral_radius, Matrix};

/// A certificate of stability must be backed by bounded simulations, and a
/// certificate of instability by a diverging switching sequence.
#[test]
fn certificate_agrees_with_simulation_pi() {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.013, 5).unwrap();
    let table = pi::design_adaptive(&plant, &hset).unwrap();

    let report = stability::certify(&plant, &table, &CertifyOptions::default()).unwrap();
    assert_eq!(report.verdict, StabilityVerdict::Stable, "{:?}", report.bounds);

    // Every random switching pattern must then stay bounded.
    let sim = ClosedLoopSim::new(&plant, &table).unwrap();
    let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
    let worst = evaluate_worst_case(
        &sim,
        &scenario,
        &WorstCaseOptions {
            num_sequences: 300,
            jobs_per_sequence: 200,
            seed: 5,
            rmin_fraction: 0.05,
        },
    )
    .unwrap();
    assert!(worst.all_stable());
    assert!(worst.worst_cost.is_finite());
}

#[test]
fn unstable_certificate_matches_divergence() {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.010, 2).unwrap();
    // No control at all on an unstable plant.
    let zero = ControllerMode::static_gain(Matrix::zeros(1, 1)).unwrap();
    let table = overrun_control::ControllerTable::fixed(zero, hset).unwrap();
    let report = stability::certify(&plant, &table, &CertifyOptions::default()).unwrap();
    assert_eq!(report.verdict, StabilityVerdict::Unstable);

    let sim = ClosedLoopSim::new(&plant, &table)
        .unwrap()
        .with_divergence_threshold(1e6);
    let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
    let traj = sim.run(&scenario, &vec![0; 5000]).unwrap();
    assert!(traj.diverged);
}

/// Every per-mode closed loop of an adaptive design must be stable at its
/// own interval, and the JSR lower bound can never undercut the largest
/// per-mode spectral radius.
#[test]
fn jsr_lower_bound_dominates_mode_radii() {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, 1.3 * 50e-6, 2).unwrap();
    let weights = overrun_control::scenarios::pmsm_table2_weights();
    let table = lqr::design_adaptive(&plant, &hset, &weights).unwrap();
    let meas = lifted::measurement_matrix(&plant, &table).unwrap();
    let omegas = lifted::build_omega_set(&plant, &table, &meas).unwrap();
    let max_mode_rho = omegas
        .iter()
        .map(|o| spectral_radius(o).unwrap())
        .fold(0.0_f64, f64::max);
    assert!(max_mode_rho < 1.0);

    let report = stability::certify(&plant, &table, &CertifyOptions::default()).unwrap();
    assert!(report.bounds.lower >= max_mode_rho - 1e-6);
    assert!(report.bounds.upper >= report.bounds.lower - 1e-12);
    assert_eq!(report.verdict, StabilityVerdict::Stable);
}

/// The Eq.-12 brute-force bounds and the production certificate must agree
/// (their intervals both contain the true JSR).
#[test]
fn eq12_and_certificate_intervals_overlap() {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.016, 2).unwrap();
    let table = pi::design_adaptive(&plant, &hset).unwrap();
    let cert = stability::certify(&plant, &table, &CertifyOptions::default())
        .unwrap()
        .bounds;
    let eq12 = stability::eq12_bounds(&plant, &table, 7).unwrap();
    assert!(cert.lower <= eq12.upper + 1e-9, "cert={cert:?} eq12={eq12:?}");
    assert!(eq12.lower <= cert.upper + 1e-9, "cert={cert:?} eq12={eq12:?}");
}

/// Ns = 1 reduces the policy to skip-next; the design and certificate must
/// still go through (coarser grid, possibly larger delays).
#[test]
fn skip_next_special_case_certifies() {
    let plant = plants::unstable_second_order();
    // Rmax = 1.3 T with Ns = 1: H = {T, 2T}.
    let hset = IntervalSet::from_timing(0.010, 0.013, 1).unwrap();
    assert_eq!(hset.len(), 2);
    assert!((hset.max_interval() - 0.020).abs() < 1e-12);
    let table = pi::design_adaptive(&plant, &hset).unwrap();
    let report = stability::certify(&plant, &table, &CertifyOptions::default()).unwrap();
    // The coarse grid shrinks the margin; accept stable-or-unknown, but the
    // bounds must be meaningful.
    assert!(report.bounds.lower > 0.5);
    assert!(report.bounds.upper < 1.2);
}

/// The deployment rule (Sec. V-B): shrinking the actual worst case keeps
/// the certified table valid; growing it invalidates the subset check.
#[test]
fn deployment_subset_rule_end_to_end() {
    let designed = IntervalSet::from_timing(0.010, 0.016, 5).unwrap();
    let smaller = IntervalSet::from_timing(0.010, 0.012, 5).unwrap();
    let bigger = IntervalSet::from_timing(0.010, 0.018, 5).unwrap();
    assert!(smaller.is_subset_of(&designed));
    assert!(!bigger.is_subset_of(&designed));
}
